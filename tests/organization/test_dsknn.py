"""Tests for DS-kNN dataset categorization."""

import random

import pytest

from repro.core.dataset import Table
from repro.organization.dsknn import DsKnnOrganizer, dataset_features


def sales_like(name, seed):
    rng = random.Random(seed)
    return Table.from_columns(name, {
        "region": [rng.choice(["eu", "us"]) for _ in range(60)],
        "amount": [rng.uniform(10, 100) for _ in range(60)],
        "quarter": [rng.choice(["q1", "q2", "q3", "q4"]) for _ in range(60)],
    })


def sensor_like(name, seed):
    rng = random.Random(seed)
    return Table.from_columns(name, {
        "t0": [rng.gauss(0, 1) for _ in range(60)],
        "t1": [rng.gauss(0, 1) for _ in range(60)],
        "t2": [rng.gauss(0, 1) for _ in range(60)],
        "t3": [rng.gauss(0, 1) for _ in range(60)],
        "t4": [rng.gauss(0, 1) for _ in range(60)],
    })


class TestFeatures:
    def test_fixed_width(self, customers):
        assert len(dataset_features(customers)) == 8

    def test_empty_table(self):
        assert dataset_features(Table("t", [])) == [0.0] * 8

    def test_numeric_fraction(self):
        table = sales_like("s", 0)
        features = dataset_features(table)
        assert features[1] == pytest.approx(1 / 3)  # one numeric of three


class TestIncrementalCategorization:
    def test_first_dataset_opens_category(self):
        organizer = DsKnnOrganizer()
        assert organizer.add(sales_like("sales_a", 1)) == 1

    def test_similar_datasets_share_category(self):
        organizer = DsKnnOrganizer(k=1, max_distance=1.0)
        first = organizer.add(sales_like("sales_a", 1))
        second = organizer.add(sales_like("sales_b", 2))
        assert first == second

    def test_dissimilar_dataset_opens_new_category(self):
        organizer = DsKnnOrganizer(k=1, max_distance=0.8)
        sales_category = organizer.add(sales_like("sales_a", 1))
        sensor_category = organizer.add(sensor_like("sensor_x", 3))
        assert sales_category != sensor_category

    def test_categories_listing(self):
        organizer = DsKnnOrganizer(k=1, max_distance=1.0)
        organizer.add(sales_like("sales_a", 1))
        organizer.add(sales_like("sales_b", 2))
        organizer.add(sensor_like("sensor_x", 3))
        categories = organizer.categories()
        grouped = sorted(sorted(names) for names in categories.values())
        assert ["sales_a", "sales_b"] in grouped
        assert ["sensor_x"] in grouped

    def test_category_of(self):
        organizer = DsKnnOrganizer()
        organizer.add(sales_like("s", 1))
        assert organizer.category_of("s") == 1


class TestGraphAndPrefilter:
    def test_similarity_graph(self):
        organizer = DsKnnOrganizer(k=1, max_distance=1.0)
        organizer.add(sales_like("sales_a", 1))
        organizer.add(sales_like("sales_b", 2))
        graph = organizer.similarity_graph(max_edge_distance=2.0)
        assert graph.has_edge("sales_a", "sales_b")
        assert 0.0 < graph["sales_a"]["sales_b"]["similarity"] <= 1.0

    def test_prefilter_pairs_within_category_only(self):
        organizer = DsKnnOrganizer(k=1, max_distance=0.8)
        organizer.add(sales_like("sales_a", 1))
        organizer.add(sales_like("sales_b", 2))
        organizer.add(sensor_like("sensor_x", 3))
        pairs = organizer.prefilter_pairs()
        assert ("sales_a", "sales_b") in pairs
        assert all("sensor_x" not in pair for pair in pairs)
