"""Tests for Juneau's workflow and variable dependency graphs."""

import pytest

from repro.core.dataset import Table
from repro.datagen.notebooks import NotebookGenerator
from repro.organization.juneau_graphs import (
    Notebook,
    VariableDependencyGraph,
    WorkflowGraph,
)


@pytest.fixture
def notebook():
    nb = Notebook("analysis")
    nb.add_cell("read_csv", outputs=["raw"])
    nb.add_cell("dropna", inputs=["raw"], outputs=["clean"])
    nb.add_cell("read_csv", outputs=["dim"])
    nb.add_cell("merge", inputs=["clean", "dim"], outputs=["joined"])
    nb.add_cell("markdown note", is_code=False)
    return nb


class TestWorkflowGraph:
    def test_bipartite(self, notebook):
        graph = WorkflowGraph(notebook)
        assert graph.is_bipartite()

    def test_node_partitions(self, notebook):
        graph = WorkflowGraph(notebook)
        assert graph.data_nodes() == ["clean", "dim", "joined", "raw"]
        assert len(graph.module_nodes()) == 5

    def test_edges_direction(self, notebook):
        graph = WorkflowGraph(notebook)
        merge_module = ("module", "analysis#3")
        assert graph.graph.has_edge(("data", "clean"), merge_module)
        assert graph.graph.has_edge(merge_module, ("data", "joined"))


class TestVariableDependencyGraph:
    def test_labeled_edges(self, notebook):
        graph = VariableDependencyGraph(notebook)
        assert ("clean", "joined", "merge") in graph.edges()
        assert ("raw", "clean", "dropna") in graph.edges()

    def test_non_code_cells_ignored(self, notebook):
        graph = VariableDependencyGraph(notebook)
        assert all("markdown" not in f for _, _, f in graph.edges())

    def test_affecting(self, notebook):
        graph = VariableDependencyGraph(notebook)
        assert graph.affecting("joined") == {"raw", "clean", "dim"}
        assert graph.affecting("raw") == set()
        assert graph.affecting("ghost") == set()

    def test_affected_by(self, notebook):
        graph = VariableDependencyGraph(notebook)
        assert graph.affected_by("raw") == {"clean", "joined"}

    def test_derivation_functions(self, notebook):
        graph = VariableDependencyGraph(notebook)
        assert graph.derivation_functions("raw", "joined") == ["dropna", "merge"]
        assert graph.derivation_functions("joined", "raw") == []


class TestProvenanceSimilarity:
    def test_same_recipe_high_similarity(self):
        generator = NotebookGenerator()
        nb1 = generator.generate("clean_join", "nb1")
        nb2 = generator.generate("clean_join", "nb2")
        g1, g2 = VariableDependencyGraph(nb1), VariableDependencyGraph(nb2)
        v1 = generator.final_variable("clean_join", "nb1")
        v2 = generator.final_variable("clean_join", "nb2")
        assert g1.provenance_similarity(v1, g2, v2) > 0.9
        assert g1.shares_workflow(v1, g2, v2)

    def test_different_recipe_low_similarity(self):
        generator = NotebookGenerator()
        nb1 = generator.generate("clean_join", "nb1")
        nb3 = generator.generate("quick_plot", "nb3")
        g1, g3 = VariableDependencyGraph(nb1), VariableDependencyGraph(nb3)
        v1 = generator.final_variable("clean_join", "nb1")
        v3 = generator.final_variable("quick_plot", "nb3")
        assert g1.provenance_similarity(v1, g3, v3) < 0.5
        assert not g1.shares_workflow(v1, g3, v3)

    def test_empty_patterns(self):
        nb = Notebook("empty")
        graph = VariableDependencyGraph(nb)
        assert graph.provenance_similarity("x", graph, "y") == 0.0


class TestNotebookBinding:
    def test_bind_table(self, notebook):
        table = Table.from_columns("t", {"a": [1]})
        notebook.bind_table("joined", table)
        assert notebook.tables["joined"] is table
