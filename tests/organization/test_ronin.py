"""Tests for RONIN combined exploration."""

import pytest

from repro.core.dataset import Table
from repro.organization.ronin import Ronin


@pytest.fixture
def ronin(customers, orders, products):
    ronin = Ronin(branching=2)
    ronin.add_table(customers, description="customer master records")
    ronin.add_table(orders, description="order transactions")
    ronin.add_table(products, description="product colors and prices")
    return ronin


class TestComponents:
    def test_keyword_search(self, ronin):
        hits = ronin.keyword_search("customer")
        assert hits[0][0] in ("customers", "orders")

    def test_keyword_search_uses_description(self, ronin):
        assert ronin.keyword_search("colors")[0][0] == "products"

    def test_joinable_search(self, ronin):
        hits = ronin.joinable_search("orders", "customer_id", k=3)
        assert hits[0][0] == ("customers", "customer_id")

    def test_navigation_lands_somewhere(self, ronin):
        landed = ronin.navigate("product color")
        assert landed is not None

    def test_organization_covers_all_attributes(self, ronin, customers, orders, products):
        expected = {
            (t.name, c) for t in (customers, orders, products) for c in t.column_names
        }
        assert set(ronin.organization.attributes()) == expected

    def test_organization_rebuilt_after_add(self, ronin):
        before = len(ronin.organization.attributes())
        ronin.add_table(Table.from_columns("extra", {"x": [1, 2]}))
        assert len(ronin.organization.attributes()) == before + 1


class TestCombinedExploration:
    def test_explore_returns_ranked_tables(self, ronin):
        result = ronin.explore("customer orders", k=3)
        assert result
        assert "orders" in result or "customers" in result

    def test_explore_k_bound(self, ronin):
        assert len(ronin.explore("customer", k=1)) <= 1
