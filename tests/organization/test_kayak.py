"""Tests for KAYAK pipelines and scheduling."""

import pytest

from repro.core.errors import DataLakeError
from repro.organization.kayak import AtomicTask, Kayak, Primitive


def diamond_primitive(name="prep", cost=1.0):
    """profile -> (joinability, stats) -> summarize."""
    primitive = Primitive(name)
    primitive.add_task(AtomicTask("profile", cost=cost))
    primitive.add_task(AtomicTask("joinability", cost=cost), after=["profile"])
    primitive.add_task(AtomicTask("stats", cost=cost), after=["profile"])
    primitive.add_task(AtomicTask("summarize", cost=cost), after=["joinability", "stats"])
    return primitive


class TestPrimitives:
    def test_task_dag_structure(self):
        dag = diamond_primitive().task_dag()
        assert set(dag.nodes) == {"profile", "joinability", "stats", "summarize"}
        assert dag.has_edge("profile", "joinability")

    def test_cycle_detected(self):
        primitive = Primitive("bad")
        primitive.add_task(AtomicTask("a"), after=["b"])
        primitive.add_task(AtomicTask("b"), after=["a"])
        with pytest.raises(DataLakeError, match="cyclic"):
            primitive.task_dag()

    def test_parallelizable_groups(self):
        kayak = Kayak()
        kayak.add_primitive(diamond_primitive())
        groups = kayak.parallelizable_groups("prep")
        assert groups == [["profile"], ["joinability", "stats"], ["summarize"]]


class TestPipeline:
    def test_pipeline_dag(self):
        kayak = Kayak()
        kayak.add_primitive(diamond_primitive("ingest"))
        kayak.add_primitive(diamond_primitive("prepare"), after=["ingest"])
        dag = kayak.pipeline_dag()
        assert list(dag.edges) == [("ingest", "prepare")]

    def test_unknown_dependency_rejected(self):
        kayak = Kayak()
        with pytest.raises(DataLakeError):
            kayak.add_primitive(diamond_primitive("x"), after=["ghost"])

    def test_run_executes_actions_in_order(self):
        executed = []
        primitive = Primitive("p")
        primitive.add_task(AtomicTask("first", action=lambda: executed.append("first") or 1))
        primitive.add_task(AtomicTask("second", action=lambda: executed.append("second") or 2),
                           after=["first"])
        kayak = Kayak()
        kayak.add_primitive(primitive)
        results = kayak.run()
        assert executed == ["first", "second"]
        assert results == {"p.first": 1, "p.second": 2}

    def test_run_respects_pipeline_order(self):
        executed = []
        first = Primitive("first")
        first.add_task(AtomicTask("t", action=lambda: executed.append("first")))
        second = Primitive("second")
        second.add_task(AtomicTask("t", action=lambda: executed.append("second")))
        kayak = Kayak()
        kayak.add_primitive(first)
        kayak.add_primitive(second, after=["first"])
        kayak.run()
        assert executed == ["first", "second"]


class TestScheduling:
    def test_parallel_beats_sequential(self):
        kayak = Kayak(num_workers=2)
        kayak.add_primitive(diamond_primitive(cost=1.0))
        sequential = kayak.sequential_makespan()
        parallel = kayak.parallel_makespan()
        assert sequential == 4.0
        assert parallel == 3.0  # joinability & stats run concurrently

    def test_single_worker_equals_sequential(self):
        kayak = Kayak(num_workers=1)
        kayak.add_primitive(diamond_primitive(cost=1.0))
        assert kayak.parallel_makespan() == kayak.sequential_makespan()

    def test_independent_primitives_overlap(self):
        kayak = Kayak(num_workers=4)
        kayak.add_primitive(diamond_primitive("a"))
        kayak.add_primitive(diamond_primitive("b"))
        assert kayak.parallel_makespan() < kayak.sequential_makespan()

    def test_pipeline_dependency_serializes(self):
        kayak = Kayak(num_workers=8)
        kayak.add_primitive(diamond_primitive("a"))
        kayak.add_primitive(diamond_primitive("b"), after=["a"])
        # chained diamonds: 3 + 3 critical path
        assert kayak.parallel_makespan() == 6.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            Kayak(num_workers=0)

    def test_empty_pipeline(self):
        assert Kayak().parallel_makespan() == 0.0


class TestJustInTimeBudget:
    def _jit_primitive(self):
        primitive = Primitive("profile")
        primitive.add_task(AtomicTask(
            "full_profile", cost=10.0, action=lambda: "exact-profile",
            approximate_action=lambda: "sampled-profile", approximate_cost=2.0,
        ))
        primitive.add_task(AtomicTask(
            "joinability", cost=10.0, action=lambda: "exact-join",
            approximate_action=lambda: "sketch-join", approximate_cost=3.0,
        ), after=["full_profile"])
        primitive.add_task(AtomicTask(
            "report", cost=1.0, action=lambda: "report",
        ), after=["joinability"])
        return primitive

    def test_generous_budget_runs_exact(self):
        kayak = Kayak()
        kayak.add_primitive(self._jit_primitive())
        outcome = kayak.run_within_budget(budget=100.0)
        assert outcome["exact"] == ["profile.full_profile", "profile.joinability",
                                    "profile.report"]
        assert outcome["approximated"] == []
        assert outcome["results"]["profile.full_profile"] == "exact-profile"

    def test_tight_budget_approximates(self):
        kayak = Kayak()
        kayak.add_primitive(self._jit_primitive())
        outcome = kayak.run_within_budget(budget=6.0)
        assert "profile.full_profile" in outcome["approximated"]
        assert outcome["results"]["profile.full_profile"] == "sampled-profile"
        assert outcome["cost_spent"] <= 6.0

    def test_exhausted_budget_skips_dependents(self):
        kayak = Kayak()
        kayak.add_primitive(self._jit_primitive())
        outcome = kayak.run_within_budget(budget=2.0)
        assert outcome["approximated"] == ["profile.full_profile"]
        # joinability cannot fit at all -> skipped, and report depends on it
        assert "profile.joinability" in outcome["skipped"]
        assert "profile.report" in outcome["skipped"]

    def test_zero_budget(self):
        kayak = Kayak()
        kayak.add_primitive(self._jit_primitive())
        outcome = kayak.run_within_budget(budget=0.0)
        assert outcome["exact"] == []
        assert outcome["cost_spent"] == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Kayak().run_within_budget(budget=-1.0)
