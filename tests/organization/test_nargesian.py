"""Tests for the Nargesian et al. organization."""

import pytest

from repro.core.dataset import Table
from repro.organization.nargesian import Organization, OrganizationBuilder


@pytest.fixture
def tables():
    colors = Table.from_columns("paints", {
        "paint_color": ["red", "blue", "green", "black", "white"],
        "paint_price": [1, 2, 3, 4, 5],
    })
    cities = Table.from_columns("trips", {
        "destination_city": ["berlin", "paris", "london", "rome", "madrid"],
        "trip_cost": [100, 200, 300, 150, 250],
    })
    fruit = Table.from_columns("market", {
        "fruit_name": ["apple", "banana", "cherry", "mango", "kiwi"],
    })
    return [colors, cities, fruit]


@pytest.fixture
def builder():
    return OrganizationBuilder(branching=2)


class TestConstruction:
    def test_all_attributes_are_leaves(self, builder, tables):
        organization = builder.build_from_tables(tables)
        expected = {(t.name, c) for t in tables for c in t.column_names}
        assert set(organization.attributes()) == expected

    def test_containment_invariant(self, builder, tables):
        organization = builder.build_from_tables(tables)
        assert organization.containment_holds()

    def test_flat_baseline_depth_two(self, builder, tables):
        vectors = builder.attribute_vectors(tables)
        flat = builder.build_flat(vectors)
        assert flat.depth() == 2
        assert set(flat.attributes()) == set(vectors)

    def test_random_baseline_preserves_leaves(self, builder, tables):
        vectors = builder.attribute_vectors(tables)
        random_org = builder.build_random(vectors, seed=3)
        assert set(random_org.attributes()) == set(vectors)
        assert random_org.containment_holds()

    def test_branching_validated(self):
        with pytest.raises(ValueError):
            OrganizationBuilder(branching=1)


class TestNavigation:
    def test_navigate_reaches_semantic_leaf(self, builder, tables):
        organization = builder.build_from_tables(tables)
        landed = organization.navigate(builder.embedder.embed("paint color red blue"))
        assert landed is not None

    def test_discovery_probability_sums_to_one_over_leaves(self, builder, tables):
        organization = builder.build_from_tables(tables)
        query = builder.embedder.embed("destination city")
        total = sum(
            organization.discovery_probability(query, attribute)
            for attribute in organization.attributes()
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_probability_of_absent_attribute_zero(self, builder, tables):
        organization = builder.build_from_tables(tables)
        query = builder.embedder.embed("anything")
        assert organization.discovery_probability(query, ("ghost", "x")) == 0.0


class TestOptimizationObjective:
    def test_optimized_beats_random(self, workload):
        """The survey's claim: the organization maximizes find probability.

        Queries are *noisy* topic vectors (attribute name + 3 sample
        values), not the exact leaf representations — the realistic setting
        where structure matters.
        """
        builder = OrganizationBuilder(branching=3)
        vectors = builder.attribute_vectors(workload.tables)
        queries = {}
        for table in workload.tables:
            for column in table.columns:
                sample = sorted(column.distinct())[:3]
                queries[(table.name, column.name)] = builder.embedder.embed_set(
                    [column.name] + [str(v) for v in sample]
                )
        optimized = builder.build(vectors)
        random_scores = [
            builder.build_random(vectors, seed=seed).expected_discovery_probability(queries)
            for seed in range(3)
        ]
        optimized_score = optimized.expected_discovery_probability(queries)
        assert optimized_score > max(random_scores)

    def test_expected_probability_empty(self, builder, tables):
        organization = builder.build_from_tables(tables)
        assert organization.expected_discovery_probability({}) == 0.0
