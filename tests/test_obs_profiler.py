"""The sampling profiler: hotspot attribution, request buckets, reports."""

import threading
import time

import pytest

from repro.obs import SamplingProfiler, request_context, reset


@pytest.fixture(autouse=True)
def clean_obs():
    reset()
    yield
    reset()


def _spin(duration_s, ready=None):
    """A recognizable hot function for the sampler to catch."""
    if ready is not None:
        ready.set()
    deadline = time.monotonic() + duration_s
    total = 0
    while time.monotonic() < deadline:
        total += sum(range(200))
    return total


def _entry(snapshot, function):
    for row in snapshot["functions"]:
        if row["function"] == function:
            return row
    return None


class TestSamplingProfiler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval=0.005)
        assert not profiler.running
        profiler.start()
        profiler.start()  # second start is a no-op
        assert profiler.running
        profiler.stop()
        profiler.stop()  # second stop is a no-op
        assert not profiler.running

    def test_hot_function_shows_in_self_and_cum(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _spin(0.25)
        snap = profiler.snapshot()
        assert snap["samples"] > 10
        entry = _entry(snap, "_spin")
        assert entry is not None
        assert entry["cum_ms"] >= entry["self_ms"] > 0
        # the caller accumulates cumulative time through _spin
        caller = _entry(snap, "test_hot_function_shows_in_self_and_cum")
        assert caller is not None and caller["cum_ms"] > 0

    def test_per_request_attribution_via_thread_map(self):
        profiler = SamplingProfiler(interval=0.002)
        captured = {}

        def work():
            with request_context() as ctx:
                captured["request_id"] = ctx.request_id
                _spin(0.25)

        with profiler:
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        snap = profiler.snapshot()
        assert captured["request_id"] in snap["requests"]
        assert snap["requests"][captured["request_id"]] > 0

    def test_collapsed_stacks_are_flamegraph_shaped(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _spin(0.25)
        collapsed = profiler.collapsed()
        spin_lines = [line for line in collapsed.splitlines()
                      if ":_spin" in line]
        assert spin_lines
        frames, weight = spin_lines[0].rsplit(" ", 1)
        assert float(weight) > 0
        assert all(":" in frame for frame in frames.split(";"))
        # min_ms filters small stacks out
        assert profiler.collapsed(min_ms=10 ** 9) == ""

    def test_sampler_never_charges_its_own_loop(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _spin(0.15)
        snap = profiler.snapshot()
        # the sampler thread's own machinery must never appear; user
        # threads passing through start/stop may legitimately be sampled
        assert all(row["function"] not in ("_run", "_tick")
                   for row in snap["functions"]
                   if row["module"].endswith("obs.profiler"))

    def test_duty_cycle_is_self_metered(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _spin(0.2)
        snap = profiler.snapshot()
        # every tick timed itself; the ratio is the sampler's overhead
        assert snap["tick_cost_ms"] > 0
        assert 0 < snap["duty_cycle_pct"] < 100
        assert snap["duty_cycle_pct"] == pytest.approx(
            snap["tick_cost_ms"] / snap["elapsed_ms"] * 100, abs=0.01)

    def test_render_report_and_reset(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _spin(0.2)
        report = profiler.render_report(top=5)
        assert "sampling profiler:" in report
        assert "self_ms" in report and "cum_ms" in report
        profiler.reset()
        snap = profiler.snapshot()
        assert snap["samples"] == 0
        assert snap["functions"] == [] and snap["requests"] == {}

    def test_max_stacks_caps_distinct_paths(self):
        profiler = SamplingProfiler(interval=0.002, max_stacks=1)
        ready = threading.Event()
        stop = threading.Event()

        def hold():
            ready.set()
            _spin(0.2)
            stop.wait(2)

        with profiler:
            thread = threading.Thread(target=hold)
            thread.start()
            ready.wait(2)
            _spin(0.2)
            stop.set()
            thread.join()
        with profiler._lock:
            distinct = len(profiler._stacks)
        assert distinct <= 1
