"""Tests for the benchmark reporting helpers."""

from repro.bench.reporting import render_table, report_experiment


class TestRenderTable:
    def test_contains_title_and_rows(self):
        rendered = render_table("My Table", ["a", "b"], [[1, "x"], [2, "y"]])
        assert "=== My Table ===" in rendered
        assert "1" in rendered and "y" in rendered

    def test_columns_aligned(self):
        rendered = render_table("T", ["col", "value"], [["a", 1], ["longer", 22]])
        lines = [l for l in rendered.splitlines() if "|" in l and "-" not in l]
        pipes = {line.index("|") for line in lines}
        assert len(pipes) == 1  # same pipe position on every row

    def test_long_cells_clipped(self):
        rendered = render_table("T", ["c"], [["x" * 500]], max_cell=10)
        assert "x" * 11 not in rendered
        assert "…" in rendered

    def test_empty_rows(self):
        rendered = render_table("T", ["a"], [])
        assert "=== T ===" in rendered

    def test_empty_rows_separator_bars_stay_aligned(self):
        rendered = render_table("T", ["", "x"], [])
        bars = [l for l in rendered.splitlines() if set(l) <= {"-", "+"}]
        assert len(bars) == 3
        assert len({len(bar) for bar in bars}) == 1
        assert all(len(bar) >= len(" | ") for bar in bars)  # no zero-width columns

    def test_numeric_cells_right_aligned(self):
        rendered = render_table("T", ["name", "count"], [["a", 5], ["bb", 12345]])
        lines = rendered.splitlines()  # 0=title 1=bar 2=header 3=bar 4..=rows
        assert lines[4].endswith("    5")  # 5 right-aligned under "count"
        assert lines[5].endswith("12345")

    def test_bools_and_strings_stay_left_aligned(self):
        rendered = render_table("T", ["flag"], [[True], ["yes"]])
        lines = rendered.splitlines()
        assert lines[4].startswith("True")
        assert lines[5].startswith("yes ")

    def test_ragged_rows_do_not_raise(self):
        rendered = render_table("T", ["a", "b"], [["only-one"]])
        assert "only-one" in rendered


class TestReportExperiment:
    def test_format(self):
        report = report_experiment("exp-1", "the claim", "the measurement")
        assert "[exp-1] paper: the claim" in report
        assert "[exp-1] measured: the measurement" in report
