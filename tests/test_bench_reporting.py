"""Tests for the benchmark reporting helpers."""

from repro.bench.reporting import render_table, report_experiment


class TestRenderTable:
    def test_contains_title_and_rows(self):
        rendered = render_table("My Table", ["a", "b"], [[1, "x"], [2, "y"]])
        assert "=== My Table ===" in rendered
        assert "1" in rendered and "y" in rendered

    def test_columns_aligned(self):
        rendered = render_table("T", ["col", "value"], [["a", 1], ["longer", 22]])
        lines = [l for l in rendered.splitlines() if "|" in l and "-" not in l]
        pipes = {line.index("|") for line in lines}
        assert len(pipes) == 1  # same pipe position on every row

    def test_long_cells_clipped(self):
        rendered = render_table("T", ["c"], [["x" * 500]], max_cell=10)
        assert "x" * 11 not in rendered
        assert "…" in rendered

    def test_empty_rows(self):
        rendered = render_table("T", ["a"], [])
        assert "=== T ===" in rendered


class TestReportExperiment:
    def test_format(self):
        report = report_experiment("exp-1", "the claim", "the measurement")
        assert "[exp-1] paper: the claim" in report
        assert "[exp-1] measured: the measurement" in report
