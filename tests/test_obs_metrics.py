"""Metrics registry: counters, gauges, histogram quantiles, thread safety."""

import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        counter = Counter("ops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("ops").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_summary_tracks_exact_sum_count_min_max(self):
        histogram = Histogram("latency")
        for value in (1.0, 2.0, 3.0, 10.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 16.0
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["mean"] == 4.0

    def test_quantiles_within_bucket_resolution(self):
        histogram = Histogram("latency")
        values = [float(v) for v in range(1, 1001)]  # uniform 1..1000
        for value in values:
            histogram.observe(value)

        def bucket_width(true_value):
            bounds = (0.0,) + histogram.bounds + (float("inf"),)
            for lo, hi in zip(bounds, bounds[1:]):
                if lo < true_value <= hi:
                    return hi - lo
            return float("inf")

        for q, true_value in ((0.50, 500.0), (0.95, 950.0), (0.99, 990.0)):
            estimate = histogram.quantile(q)
            assert abs(estimate - true_value) <= bucket_width(true_value), (
                f"p{int(q * 100)} estimate {estimate} too far from {true_value}"
            )

    def test_quantile_single_value(self):
        histogram = Histogram("latency")
        histogram.observe(42.0)
        assert histogram.quantile(0.5) == pytest.approx(42.0)
        assert histogram.quantile(1.0) == pytest.approx(42.0)

    def test_quantile_empty_histogram(self):
        assert Histogram("latency").quantile(0.5) == 0.0

    def test_quantile_validates_q(self):
        with pytest.raises(ValueError):
            Histogram("latency").quantile(0.0)
        with pytest.raises(ValueError):
            Histogram("latency").quantile(1.5)

    def test_overflow_bucket(self):
        histogram = Histogram("latency", buckets=(1.0, 10.0))
        histogram.observe(1e9)
        cumulative = dict(histogram.bucket_counts())
        assert cumulative[float("inf")] == 1
        assert cumulative[10.0] == 0
        assert histogram.quantile(1.0) == pytest.approx(1e9)

    def test_custom_buckets_sorted_and_deduped(self):
        histogram = Histogram("latency", buckets=(10.0, 1.0, 10.0))
        assert histogram.bounds == (1.0, 10.0)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3
        assert "a" in registry and "z" not in registry

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(2.5)
        snapshot = registry.snapshot()
        assert snapshot["ops"] == {"type": "counter", "value": 3}
        assert snapshot["depth"] == {"type": "gauge", "value": 7}
        assert snapshot["lat"]["type"] == "histogram"
        assert snapshot["lat"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.reset()
        assert len(registry) == 0

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        num_threads, increments = 8, 2000

        def work():
            counter = registry.counter("shared")
            histogram = registry.histogram("lat")
            for index in range(increments):
                counter.inc()
                histogram.observe(float(index % 50))

        threads = [threading.Thread(target=work) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("shared").value == num_threads * increments
        assert registry.histogram("lat").count == num_threads * increments

    def test_default_buckets_cover_millisecond_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60000.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
