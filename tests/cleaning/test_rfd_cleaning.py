"""Tests for Constance's RFD-based cleaning."""

import pytest

from repro.core.dataset import Table
from repro.cleaning.rfd_cleaning import RfdCleaner


@pytest.fixture
def dirty_table():
    return Table.from_columns("cities", {
        "city": ["berlin"] * 5 + ["paris"] * 5 + ["rome"] * 5,
        "country": ["de"] * 5 + ["fr"] * 4 + ["de"] + ["it"] * 5,
        "continent": ["europe"] * 15,
    })


class TestInspect:
    def test_flags_violating_rows(self, dirty_table):
        report = RfdCleaner(min_confidence=0.85).inspect(dirty_table)
        assert report.all_flagged() == {9}  # the paris/de row

    def test_perfect_dependencies_unflagged(self, dirty_table):
        report = RfdCleaner(min_confidence=0.85).inspect(dirty_table)
        for dependency in report.flagged_rows:
            assert dependency.confidence < 1.0

    def test_clean_table_empty_report(self, customers):
        report = RfdCleaner(min_confidence=0.95).inspect(customers)
        assert report.all_flagged() == set()


class TestRepair:
    def test_repairs_to_dominant_value(self, dirty_table):
        repaired, report = RfdCleaner(min_confidence=0.85).repair(dirty_table)
        assert repaired["country"].values[9] == "fr"
        assert report.repaired_cells >= 1

    def test_repair_idempotent(self, dirty_table):
        cleaner = RfdCleaner(min_confidence=0.85)
        repaired, _ = cleaner.repair(dirty_table)
        again, second_report = cleaner.repair(repaired)
        assert second_report.repaired_cells == 0
        assert again == repaired

    def test_other_cells_untouched(self, dirty_table):
        repaired, _ = RfdCleaner(min_confidence=0.85).repair(dirty_table)
        assert repaired["city"].values == dirty_table["city"].values
        assert repaired["continent"].values == dirty_table["continent"].values
