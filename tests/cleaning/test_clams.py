"""Tests for CLAMS constraint-based cleaning."""

import pytest

from repro.cleaning.clams import Clams, Triple


def product_triples(dirty=True):
    triples = []
    for i in range(20):
        triples.append(Triple(f"prod{i}", "color", ["red", "blue"][i % 2]))
        triples.append(Triple(f"prod{i}", "price", str(10 + i)))
    if dirty:
        triples.append(Triple("prod3", "color", "not-a-color-xyz"))
        triples.append(Triple("prod5", "price", "99999"))
    return triples


@pytest.fixture
def clams():
    clams = Clams()
    clams.add_triples(product_triples())
    return clams


class TestSchemaDiscovery:
    def test_subjects_grouped_by_predicate_signature(self, clams):
        types = clams.discover_types()
        assert len(types) == 1  # all products share {color, price}
        (signature, subjects), = types.items()
        assert "color" in signature and "price" in signature
        assert len(subjects) == 20

    def test_mixed_signatures_split(self):
        clams = Clams()
        clams.add_triples([
            Triple("a", "x", "1"), Triple("b", "x", "1"), Triple("b", "y", "2"),
        ])
        assert len(clams.discover_types()) == 2


class TestConstraintInference:
    def test_domain_constraint_inferred(self, clams):
        constraints = clams.infer_constraints()
        domain = next(c for c in constraints if c.kind == "domain" and c.predicate == "color")
        assert domain.allowed == frozenset({"red", "blue"})

    def test_range_constraint_inferred(self, clams):
        constraints = clams.infer_constraints()
        price_range = next(c for c in constraints if c.kind == "range" and c.predicate == "price")
        assert price_range.low < 10
        assert price_range.high < 99999

    def test_functional_constraint(self):
        clams = Clams()
        triples = [Triple(f"s{i}", "capital", "one-value") for i in range(10)]
        triples.append(Triple("s0", "capital", "conflicting"))
        clams.add_triples(triples)
        constraints = clams.infer_constraints()
        assert any(c.kind == "functional" for c in constraints)


class TestViolationRanking:
    def test_dirty_triples_ranked_first(self, clams):
        ranked = clams.ranked_candidates()
        flagged = {t.object for t, _ in ranked}
        assert "not-a-color-xyz" in flagged
        assert "99999" in flagged

    def test_clean_triples_not_flagged(self, clams):
        flagged = {t for t, _ in clams.ranked_candidates()}
        clean = Triple("prod0", "color", "red")
        assert clean not in flagged

    def test_violation_counts_positive(self, clams):
        for _, count in clams.ranked_candidates():
            assert count >= 1


class TestValidationLoop:
    def test_user_confirms_removals(self, clams):
        before = len(clams.triples())
        removed = clams.clean(validate=lambda triple, count: True)
        assert len(removed) >= 2
        assert len(clams.triples()) == before - len(removed)

    def test_user_rejects_keeps_triples(self, clams):
        before = len(clams.triples())
        removed = clams.clean(validate=lambda triple, count: False)
        assert removed == []
        assert len(clams.triples()) == before

    def test_max_candidates(self, clams):
        removed = clams.clean(validate=lambda t, c: True, max_candidates=1)
        assert len(removed) == 1
