"""Tests for Auto-Validate pattern-rule inference."""

import pytest

from repro.core.dataset import Table
from repro.cleaning.autovalidate import AutoValidate, generalize


class TestGeneralize:
    def test_level_zero_identity(self):
        assert generalize("A-9", 0) == "A-9"

    def test_level_one_merges_alnum(self):
        assert generalize("A-9", 1) == "W-W"

    def test_level_two_skeleton_only(self):
        assert generalize("A-9.9", 2) == "-."


class TestRuleInference:
    def test_homogeneous_column_gets_specific_rule(self):
        validator = AutoValidate(fpr_budget=0.02)
        rule = validator.infer_rule("code", [f"AB-{i:04d}" for i in range(100)])
        assert rule.level == 0
        assert rule.estimated_fpr <= 0.02

    def test_heterogeneous_column_generalizes(self):
        values = [f"AB-{i}" for i in range(50)] + [f"{i}.{i}" for i in range(50)] \
            + [f"x{i}y" for i in range(50)]
        # shuffle-free split means holdout sees novel level-0 patterns rarely;
        # force variety in the holdout by interleaving
        interleaved = [v for triple in zip(values[:50], values[50:100], values[100:])
                       for v in triple]
        validator = AutoValidate(fpr_budget=0.0)
        rule = validator.infer_rule("mixed", interleaved)
        assert rule.level >= 0  # rule exists and is within budget at some level
        rejected = [v for v in interleaved if not rule.accepts(v)]
        assert rejected == []

    def test_empty_column(self):
        validator = AutoValidate()
        rule = validator.infer_rule("empty", [None, None])
        assert rule.accepts(None)

    def test_nulls_always_accepted(self):
        validator = AutoValidate()
        rule = validator.infer_rule("c", ["AB-1", "AB-2"])
        assert rule.accepts(None)
        assert rule.accepts("")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AutoValidate(fpr_budget=1.0)
        with pytest.raises(ValueError):
            AutoValidate(holdout_fraction=0.0)


class TestValidation:
    @pytest.fixture
    def trained(self):
        validator = AutoValidate(fpr_budget=0.02)
        history = Table.from_columns("feed", {
            "code": [f"AB-{i:04d}" for i in range(200)],
            "ratio": [f"{i}.{i % 10}" for i in range(200)],
        })
        validator.train(history)
        return validator

    def test_clean_batch_passes(self, trained):
        batch = Table.from_columns("feed", {
            "code": ["AB-9999", "CD-0001"],
            "ratio": ["7.5", "0.1"],
        })
        assert trained.validate(batch) == {}
        assert trained.batch_ok(batch)

    def test_drifted_batch_flagged(self, trained):
        batch = Table.from_columns("feed", {
            "code": ["completely different!!", "AB-0001"],
            "ratio": ["not-a-ratio", "1.2"],
        })
        rejected = trained.validate(batch)
        assert "code" in rejected and "ratio" in rejected
        assert not trained.batch_ok(batch, max_reject_fraction=0.1)

    def test_untrained_column_ignored(self, trained):
        batch = Table.from_columns("feed", {"new_col": ["???"]})
        assert trained.validate(batch) == {}

    def test_empty_batch_ok(self, trained):
        assert trained.batch_ok(Table("feed", []))

    def test_fpr_detection_tradeoff(self):
        """Tighter budgets keep more specific (more sensitive) rules."""
        history = [f"AB-{i:04d}" for i in range(100)]
        tight = AutoValidate(fpr_budget=0.5).infer_rule("c", history)
        # a clearly drifted value caught by the specific rule
        assert not tight.accepts("drifted value 123 !!")
